package scenario_test

import (
	"context"
	"strings"
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

// hookSweep is a batch exercising every hook at once: tagged mixed
// workloads, a fault-and-recovery schedule (Opera only — the injector is
// rotor-specific), and periodic plus one-shot probes.
func hookSweep() []scenario.Scenario {
	var scs []scenario.Scenario
	for _, seed := range []int64{1, 2, 3} {
		scs = append(scs, scenario.Scenario{
			Name: "opera-hooks",
			Kind: opera.KindOpera,
			Seed: seed,
			Options: []opera.Option{
				opera.WithBulkThreshold(20_000),
			},
			Workload: scenario.Merge(
				scenario.Tag("east", scenario.ShuffleN(10, 25_000, eventsim.Millisecond)),
				scenario.Tag("west", scenario.Bulk(scenario.ShuffleN(4, 10_000, eventsim.Millisecond))),
			),
			Events: []scenario.Event{
				scenario.At(200*eventsim.Microsecond, scenario.FailLink(3, 2)),
				scenario.At(500*eventsim.Microsecond, scenario.FailRandomLinks(0.05)),
				scenario.At(2*eventsim.Millisecond, scenario.RecoverLink(3, 2)),
				scenario.At(3*eventsim.Millisecond, scenario.FailSwitch(1)),
				scenario.At(6*eventsim.Millisecond, scenario.RecoverSwitch(1)),
			},
			Probes: []scenario.Probe{
				scenario.Sample("done_flows", eventsim.Millisecond,
					func(cl *opera.Cluster, _ eventsim.Time) float64 {
						done, _ := cl.Metrics().DoneCount()
						return float64(done)
					}),
				scenario.Sample("hosts", 0,
					func(cl *opera.Cluster, _ eventsim.Time) float64 {
						return float64(cl.NumHosts())
					}),
			},
			Duration: 4000 * eventsim.Millisecond,
		})
	}
	// An untagged, unhooked scenario rides along to cover the nil cases.
	scs = append(scs, scenario.Scenario{
		Name:     "expander-plain",
		Kind:     opera.KindExpander,
		Seed:     1,
		Workload: scenario.ShuffleN(8, 25_000, eventsim.Millisecond),
		Duration: 4000 * eventsim.Millisecond,
	})
	return scs
}

// Hooks must not break the runner's core guarantee: the same Scenario —
// workload, fault schedule, probes and all — produces a byte-identical
// Result at any parallelism.
func TestHookDeterminismUnderParallelism(t *testing.T) {
	scs := hookSweep()
	sequential, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := scenario.RunScenarios(context.Background(), scs, scenario.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		if sequential[i].Err != "" {
			t.Fatalf("scenario %d (%s): %s", i, scs[i].Name, sequential[i].Err)
		}
		if !sequential[i].Equal(parallel[i]) {
			t.Errorf("scenario %d (%s seed %d): results diverge\n sequential: %+v\n parallel:   %+v",
				i, scs[i].Name, scs[i].Seed, sequential[i], parallel[i])
		}
		if !sequential[i].Completed {
			t.Errorf("scenario %d (%s): incomplete (%d/%d flows)",
				i, scs[i].Name, sequential[i].FlowsDone, sequential[i].FlowsTotal)
		}
	}
}

// Tagged workloads break down into per-tag stats that add up.
func TestTagBreakdown(t *testing.T) {
	res := scenario.Run(hookSweep()[0])
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	east, west := res.ByTag["east"], res.ByTag["west"]
	if east.FlowsTotal != 10*9 || west.FlowsTotal != 4*3 {
		t.Fatalf("tag totals east=%d west=%d, want 90 and 12", east.FlowsTotal, west.FlowsTotal)
	}
	if east.FlowsDone+west.FlowsDone != res.FlowsDone {
		t.Fatalf("tag done %d+%d != total done %d", east.FlowsDone, west.FlowsDone, res.FlowsDone)
	}
	if east.FCT.N != east.FlowsDone || east.FCT.P99Us <= 0 {
		t.Fatalf("east FCT stats implausible: %+v", east.FCT)
	}
	if east.ThroughputGbps <= 0 || west.ThroughputGbps <= 0 {
		t.Fatalf("tag throughputs: east=%g west=%g", east.ThroughputGbps, west.ThroughputGbps)
	}
	if res.ByTag["missing"] != (scenario.TagStats{}) {
		t.Fatal("unknown tag should read as zero")
	}
}

// The untagged scenario keeps ByTag nil so Results stay compact.
func TestUntaggedWorkloadHasNilByTag(t *testing.T) {
	scs := hookSweep()
	res := scenario.Run(scs[len(scs)-1])
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.ByTag != nil {
		t.Fatalf("ByTag = %v, want nil", res.ByTag)
	}
	if res.Probes != nil {
		t.Fatalf("Probes = %v, want nil", res.Probes)
	}
}

// Probes record: periodic series grow monotonically with the flow count,
// one-shot probes sample exactly once at the start.
func TestProbes(t *testing.T) {
	res := scenario.Run(hookSweep()[0])
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if len(res.Probes) != 2 {
		t.Fatalf("probes = %d, want 2", len(res.Probes))
	}
	done := res.Probes[0]
	if done.Name != "done_flows" || done.Every != eventsim.Millisecond {
		t.Fatalf("series 0 = %+v", done)
	}
	if len(done.Values) < 2 {
		t.Fatalf("periodic probe recorded %d samples", len(done.Values))
	}
	for i := 1; i < len(done.Values); i++ {
		if done.Values[i] < done.Values[i-1] {
			t.Fatalf("done-flow series decreases at %d: %v", i, done.Values)
		}
	}
	hosts := res.Probes[1]
	if len(hosts.Values) != 1 || hosts.Values[0] != 64 {
		t.Fatalf("one-shot probe = %+v, want one sample of 64", hosts)
	}
}

// Two scenarios tagging the same shared Fixed workload must not bleed
// tags into each other (Tag copies; the shared slice is read-only even
// under parallel execution).
func TestTagOverSharedFixedWorkload(t *testing.T) {
	specs := workload.Shuffle(8, 25_000, eventsim.Millisecond, 1)
	shared := scenario.Fixed(specs)
	mk := func(tag string) scenario.Scenario {
		return scenario.Scenario{
			Name: tag, Kind: opera.KindOpera, Seed: 1,
			Workload: scenario.Tag(tag, shared),
			Duration: 4000 * eventsim.Millisecond,
		}
	}
	results, err := scenario.RunScenarios(context.Background(),
		[]scenario.Scenario{mk("a"), mk("b")}, scenario.Parallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range []string{"a", "b"} {
		if results[i].Err != "" {
			t.Fatal(results[i].Err)
		}
		if got := results[i].ByTag[tag].FlowsTotal; got != len(specs) {
			t.Errorf("scenario %q: tagged %d/%d flows", tag, got, len(specs))
		}
		if len(results[i].ByTag) != 1 {
			t.Errorf("scenario %q: tags bled across scenarios: %v", tag, results[i].ByTag)
		}
	}
	for _, s := range specs {
		if s.Tag != "" {
			t.Fatalf("shared workload slice mutated: %+v", s)
		}
	}
}

// An unsupported fault target surfaces as Result.Err, not a panic or a
// silent no-op: the expander has no fabric switches, so a switch-failure
// schedule on it reports sim.ErrUnsupportedTarget. (All four
// architectures support injection itself; the folded Clos — once the
// unsupported fabric here — now takes the same schedules as the rest.)
func TestFaultScheduleUnsupportedKind(t *testing.T) {
	res := scenario.Run(scenario.Scenario{
		Name:     "expander-switch-fault",
		Kind:     opera.KindExpander,
		Seed:     1,
		Events:   []scenario.Event{scenario.At(0, scenario.FailSwitch(0))},
		Duration: eventsim.Millisecond,
	})
	if res.Err == "" {
		t.Fatal("expected Err for switch-failure schedule on expander")
	}
	if !strings.Contains(res.Err, sim.ErrUnsupportedTarget.Error()) {
		t.Fatalf("Err should cite the unsupported target: %q", res.Err)
	}

	// The folded Clos now runs flat link schedules like every fabric.
	res = scenario.Run(scenario.Scenario{
		Name:     "clos-faults",
		Kind:     opera.KindFoldedClos,
		Seed:     1,
		Events:   []scenario.Event{scenario.At(0, scenario.FailLink(0, 0))},
		Duration: eventsim.Millisecond,
	})
	if res.Err != "" {
		t.Fatalf("flat link schedule on foldedclos should run: %v", res.Err)
	}
}

// Fault schedules now run on the static expander too: link failure and
// recovery mid-run, flows complete, and the schedule stays deterministic
// across parallelism.
func TestFaultScheduleOnExpander(t *testing.T) {
	mk := func() []scenario.Scenario {
		return []scenario.Scenario{{
			Name: "expander-faults",
			Kind: opera.KindExpander,
			Seed: 1,
			Events: []scenario.Event{
				scenario.At(300*eventsim.Microsecond, scenario.FailLink(2, 1)),
				scenario.At(500*eventsim.Microsecond, scenario.FailRandomLinks(0.05)),
				scenario.At(3*eventsim.Millisecond, scenario.RecoverLink(2, 1)),
			},
			Workload: scenario.ShuffleN(12, 25_000, eventsim.Millisecond),
			Duration: 4000 * eventsim.Millisecond,
		}}
	}
	seq, err := scenario.RunScenarios(context.Background(), mk(), scenario.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := scenario.RunScenarios(context.Background(), mk(), scenario.Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if seq[0].Err != "" {
		t.Fatal(seq[0].Err)
	}
	if !seq[0].Completed || seq[0].FlowsDone != seq[0].FlowsTotal {
		t.Fatalf("faulted expander run incomplete: %d/%d", seq[0].FlowsDone, seq[0].FlowsTotal)
	}
	if !seq[0].Equal(par[0]) {
		t.Fatalf("expander fault schedule not deterministic across parallelism:\n seq: %+v\n par: %+v", seq[0], par[0])
	}
}

// FailRandomLinks on the expander counts physical cables, not endpoint
// coordinates: each cable appears twice in (rack, slot) space, so naive
// endpoint sampling would fail roughly twice the requested fraction.
func TestFailRandomLinksExpanderCountsCables(t *testing.T) {
	const fraction = 0.25
	cl, res := scenario.Collect(scenario.Scenario{
		Name:     "expander-random",
		Kind:     opera.KindExpander,
		Seed:     1,
		Events:   []scenario.Event{scenario.At(0, scenario.FailRandomLinks(fraction))},
		Duration: eventsim.Millisecond,
	})
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	ef := cl.Network().(*sim.ExpanderNet).Faults()
	links := ef.DistinctLinks()
	want := int(fraction*float64(len(links)) + 0.5)
	var down int
	for _, l := range links {
		if !ef.LinkUp(l[0], l[1]) {
			down++
		}
	}
	if down != want {
		t.Fatalf("failed %d/%d cables, want %d (fraction %.2f of cables, not endpoints)",
			down, len(links), want, fraction)
	}
}

// Out-of-range fault targets are rejected at scheduling time.
func TestFaultScheduleValidation(t *testing.T) {
	for _, ev := range []scenario.Event{
		scenario.At(0, scenario.FailLink(99, 0)),
		scenario.At(0, scenario.FailLink(0, 99)),
		scenario.At(0, scenario.FailToR(-1)),
		scenario.At(-eventsim.Millisecond, scenario.FailSwitch(0)),
		scenario.At(0, scenario.FailRandomLinks(-0.1)),
		scenario.At(0, scenario.FailRandomLinks(1.5)),
	} {
		res := scenario.Run(scenario.Scenario{
			Name: "bad", Kind: opera.KindOpera, Seed: 1,
			Events: []scenario.Event{ev}, Duration: eventsim.Millisecond,
		})
		if res.Err == "" {
			t.Errorf("event %+v: expected validation error", ev)
		}
	}
}

// Flows route around an injected failure and finish after recovery — the
// §3.6.2 behavior the schedule exists to exercise.
func TestFaultInjectionFlowsComplete(t *testing.T) {
	sc := hookSweep()[0]
	res := scenario.Run(sc)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if !res.Completed || res.FlowsDone != res.FlowsTotal {
		t.Fatalf("faulted run incomplete: %d/%d", res.FlowsDone, res.FlowsTotal)
	}
}
