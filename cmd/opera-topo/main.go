// Command opera-topo inspects Opera topology realizations: slice schedule,
// path-length distributions, expander quality, direct-connectivity audit
// and forwarding-state footprint.
//
// Example:
//
//	opera-topo -racks 108 -hosts-per-rack 6 -uplinks 6
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/opera-net/opera/internal/graph"
	"github.com/opera-net/opera/internal/routing"
	"github.com/opera-net/opera/internal/topology"
)

func main() {
	racks := flag.Int("racks", 108, "number of racks N")
	hostsPerRack := flag.Int("hosts-per-rack", 6, "hosts per rack d")
	uplinks := flag.Int("uplinks", 6, "uplinks / rotor switches u")
	groupSize := flag.Int("group-size", 0, "switches per stagger group (0 = default)")
	seed := flag.Int64("seed", 1, "realization seed")
	spectral := flag.Bool("spectral", false, "compute per-slice spectral gaps (slower)")
	flag.Parse()

	o, err := topology.NewOpera(topology.Config{
		NumRacks:     *racks,
		HostsPerRack: *hostsPerRack,
		NumSwitches:  *uplinks,
		GroupSize:    *groupSize,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Opera topology: N=%d racks × %d hosts = %d hosts, u=%d rotor switches\n",
		o.NumRacks(), o.HostsPerRack(), o.NumHosts(), o.Uplinks())
	fmt.Printf("  matchings per switch: %d (rotor port maps, not O(N!) crossbars)\n", o.MatchingsPerSwitch())
	fmt.Printf("  slice duration: %v (ε=%v + r=%v)\n",
		o.SliceDuration(), o.Config().Epsilon, o.Config().ReconfDelay)
	fmt.Printf("  slices per cycle: %d   cycle time: %v   duty cycle: %.1f%%\n",
		o.SlicesPerCycle(), o.CycleTime(), 100*o.DutyCycle())

	// Path-length distribution across all slices.
	agg := graph.PathStats{Hist: make([]int, 8)}
	worstDiameter := 0
	for s := 0; s < o.SlicesPerCycle(); s++ {
		ps := o.SliceGraph(s).AllPairs()
		for h, c := range ps.Hist {
			for len(agg.Hist) <= h {
				agg.Hist = append(agg.Hist, 0)
			}
			agg.Hist[h] += c
		}
		agg.Pairs += ps.Pairs
		agg.Disconnected += ps.Disconnected
		if d := ps.Max(); d > worstDiameter {
			worstDiameter = d
		}
	}
	fmt.Printf("  path lengths: avg=%.2f worst=%d disconnected=%d\n",
		agg.Avg(), worstDiameter, agg.Disconnected)
	fmt.Printf("  path-length CDF:")
	for h, f := range agg.CDF() {
		if h == 0 {
			continue
		}
		fmt.Printf("  %d:%.3f", h, f)
	}
	fmt.Println()

	// Direct-connectivity audit: every pair once per cycle.
	n := o.NumRacks()
	missing := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			found := false
			for s := 0; s < o.SlicesPerCycle() && !found; s++ {
				found = o.DirectSwitch(s, a, b) >= 0
			}
			if !found {
				missing++
			}
		}
	}
	fmt.Printf("  direct-connectivity audit: %d/%d pairs connected each cycle\n",
		n*(n-1)/2-missing, n*(n-1)/2)

	// Forwarding state (Table 1 model).
	fmt.Printf("  forwarding entries per ToR: %d (%.1f%% of Tofino capacity)\n",
		routing.RuleCount(n, o.Uplinks()), 100*routing.RuleUtilization(n, o.Uplinks()))

	if *spectral {
		rng := rand.New(rand.NewSource(9))
		fmt.Printf("  per-slice spectral gaps (d−λ):\n")
		for s := 0; s < o.SlicesPerCycle(); s++ {
			g := o.SliceGraph(s)
			fmt.Printf("    slice %3d: gap=%.3f\n", s, g.SpectralGap(400, rng))
		}
	}
}
