// Command opera-sweep runs a scenario grid — networks × loads × seed
// replicas — sharded across worker subprocesses, and writes the merged
// CSV tables under -out. The merged output is byte-identical to a
// single-process run (-workers 0) at any worker count: shards stream
// serialized telemetry back over pipes and the coordinator merges them
// with associative operations, re-dispatching shards that crash or time
// out.
//
// The grid comes from the flags below, or from a JSON file (-grid)
// mirroring the sweep.Grid struct. With -replicas N > 1 every cell runs
// at N consecutive seeds and sweep_cells.csv reports mean ± 95% t-based
// confidence intervals; with -sketch, per-cell sweep_telemetry.csv pools
// every replica's quantile sketch into one distribution.
//
// Usage:
//
//	opera-sweep -workers 4 -networks opera,expander -loads 0.1,0.25 \
//	    -replicas 3 -sketch -out sweep_out
//
// The -worker flag is internal: the coordinator re-execs its own binary
// with it to serve one shard over stdin/stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/opera-net/opera/internal/experiments"
	"github.com/opera-net/opera/internal/obs"
	"github.com/opera-net/opera/internal/sweep"
)

func main() {
	var (
		workerMode = flag.Bool("worker", false, "internal: serve one shard (gob ShardSpec on stdin, gob Frames on stdout)")
		gridFile   = flag.String("grid", "", "JSON grid file; overrides the grid flags below")

		networks     = flag.String("networks", "", "comma-separated architectures (default opera,expander,foldedclos)")
		workloadName = flag.String("workload", "", "flow-size distribution: datamining (default) or websearch")
		loads        = flag.String("loads", "", "comma-separated offered-load fractions (default 0.01,0.1,0.25)")
		scale        = flag.String("scale", "", "small (default) or paper")
		durationMs   = flag.Float64("duration-ms", 0, "flow-arrival window in ms of virtual time (default 20)")
		drain        = flag.Int("drain", 0, "run up to drain x the arrival window (default 15)")
		maxFlowBytes = flag.Int64("max-flow-bytes", 0, "cap sampled flow sizes (default 20MB at small scale)")
		seed         = flag.Int64("seed", 0, "base seed; replica r runs at seed+r (default 1)")
		replicas     = flag.Int("replicas", 0, "seed replicas per cell; >1 adds sweep_cells confidence intervals")
		sketch       = flag.Bool("sketch", false, "streaming sketch retention + pooled sweep_telemetry table")
		alpha        = flag.Float64("alpha", 0, "sketch relative-error bound (default 1%)")

		workers = flag.Int("workers", 0, "worker processes (0 = run in-process)")
		shards  = flag.Int("shards", 0, "shards per dispatch round (0 = workers)")
		retries = flag.Int("retries", 2, "re-dispatch rounds for crashed or timed-out shards")
		timeout = flag.Duration("timeout", 0, "per-shard wall-clock timeout (0 = none)")
		out     = flag.String("out", "sweep_out", "output directory for CSVs")

		quiet      = flag.Bool("quiet", false, "suppress per-shard progress logging on stderr")
		statusAddr = flag.String("status", "", "serve live sweep progress on this address (e.g. :8080; empty = off): "+
			"/status JSON, /status/stream SSE, /debug/vars, /debug/pprof")
	)
	flag.Parse()

	if *workerMode {
		if err := sweep.ServeShard(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var g sweep.Grid
	if *gridFile != "" {
		data, err := os.ReadFile(*gridFile)
		if err != nil {
			die(err)
		}
		if err := json.Unmarshal(data, &g); err != nil {
			die(fmt.Errorf("parse %s: %w", *gridFile, err))
		}
	} else {
		g = sweep.Grid{
			Networks:     splitList(*networks),
			Workload:     *workloadName,
			Scale:        *scale,
			DurationMs:   *durationMs,
			DrainFactor:  *drain,
			MaxFlowBytes: *maxFlowBytes,
			Seed:         *seed,
			Replicas:     *replicas,
			Sketch:       *sketch,
			Alpha:        *alpha,
		}
		ls, err := parseFloats(*loads)
		if err != nil {
			die(fmt.Errorf("-loads: %w", err))
		}
		g.Loads = ls
	}

	specs, cells, err := g.Expand()
	if err != nil {
		die(err)
	}
	fmt.Printf("opera-sweep: %d scenarios (%d cells)", len(specs), len(cells))
	if *workers > 0 {
		fmt.Printf(" across %d workers\n", *workers)
	} else {
		fmt.Println(" in-process")
	}

	// Progress reporting: per-shard logging on stderr (default on) plus,
	// with -status, the same live HTTP layer opera-sim serves.
	var sinks []sweep.ProgressSink
	if !*quiet {
		sinks = append(sinks, sweep.LogProgress(os.Stderr))
	}
	var statusSrv *http.Server
	if *statusAddr != "" {
		tracker := obs.NewSweepTracker()
		sinks = append(sinks, tracker)
		srv, bound, serveErr := obs.Serve(*statusAddr, tracker)
		if serveErr != nil {
			die(serveErr)
		}
		statusSrv = srv
		fmt.Fprintf(os.Stderr, "opera-sweep: serving http://%s/status\n", bound)
	}
	var prog sweep.ProgressSink
	if len(sinks) > 0 {
		prog = sweep.MultiProgress(sinks...)
	}

	ctx := context.Background()
	var rep sweep.Report
	if *workers > 0 {
		rep, err = sweep.Run(ctx, specs, sweep.Options{
			Workers: *workers, Shards: *shards, Retries: *retries, Timeout: *timeout,
			Progress: prog,
		})
	} else {
		rep, err = sweep.RunLocalProgress(ctx, specs, 0, prog)
	}
	if statusSrv != nil {
		defer statusSrv.Close()
	}
	if err != nil {
		die(err)
	}
	for _, msg := range rep.WorkerErrs {
		fmt.Fprintln(os.Stderr, "opera-sweep:", msg)
	}

	tables, err := sweep.Tables(g, specs, cells, rep)
	if err != nil {
		die(err)
	}
	if err := experiments.WriteAll(*out, tables); err != nil {
		die(err)
	}
	for _, t := range tables {
		fmt.Printf("  wrote %s/%s.csv (%d rows)\n", *out, t.Name, len(t.Rows))
	}
	if len(rep.Failed) > 0 {
		fmt.Fprintf(os.Stderr, "opera-sweep: %d/%d scenarios failed after %d dispatch round(s)\n",
			len(rep.Failed), len(specs), rep.Rounds)
		os.Exit(1)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "opera-sweep:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
