// Command opera-experiments regenerates every table and figure of the
// Opera paper's evaluation, writing CSVs under -out (default ./results).
//
// By default the packet-level experiments (Figures 7–10) run at a reduced
// 64-host scale that completes in minutes; -full selects the paper's
// 648-host scale (expect long runtimes). Analysis-only artifacts
// (Figures 1, 4, 11–20, Tables 1–2) always run at paper scale unless
// -small is given.
//
// Usage:
//
//	opera-experiments [-out dir] [-only fig07,fig08,...] [-full] [-small]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/opera-net/opera/internal/experiments"
	"github.com/opera-net/opera/internal/plot"
	"github.com/opera-net/opera/internal/prototype"
)

func main() {
	out := flag.String("out", "results", "output directory for CSVs")
	only := flag.String("only", "", "comma-separated subset (fig01,fig04,fig07,fig08,fig09,fig10,fig11,fig12,fig13,fig14,fig15,fig16,fig17,fig19,fig20,table1,table2,ablation)")
	full := flag.Bool("full", false, "run packet-level experiments at the paper's 648-host scale")
	small := flag.Bool("small", false, "run analysis experiments at reduced scale too")
	trials := flag.Int("trials", 3, "failure-analysis trials per point")
	doPlot := flag.Bool("plot", false, "render ASCII charts of CDF-style figures to stdout")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	analysisScale := experiments.PaperScale()
	if *small {
		analysisScale = experiments.SmallScale()
	}
	simOpt := experiments.DefaultSimOptions()
	shufOpt := experiments.DefaultShuffleOptions()
	mixOpt := experiments.DefaultMixedOptions()
	if *full {
		simOpt = experiments.PaperSimOptions()
		shufOpt.Scale = experiments.PaperScale()
		shufOpt.Stagger = 10_000_000 // 10 ms, as §5.2
		mixOpt.Scale = experiments.PaperScale()
	}

	type job struct {
		name string
		run  func() ([]experiments.Table, error)
	}
	jobs := []job{
		{"fig01", func() ([]experiments.Table, error) { return experiments.Fig01FlowSizeCDFs(), nil }},
		{"fig04", func() ([]experiments.Table, error) { return experiments.Fig04PathLengths(analysisScale) }},
		{"fig07", func() ([]experiments.Table, error) { return experiments.Fig07Datamining(simOpt) }},
		{"fig08", func() ([]experiments.Table, error) { return experiments.Fig08Shuffle(shufOpt) }},
		{"fig09", func() ([]experiments.Table, error) { return experiments.Fig09Websearch(simOpt) }},
		{"fig10", func() ([]experiments.Table, error) { return experiments.Fig10Mixed(mixOpt) }},
		{"fig11", func() ([]experiments.Table, error) { return experiments.Fig11FaultTolerance(analysisScale, *trials) }},
		{"fig12", experiments.Fig12CostSweepK24},
		{"fig13", func() ([]experiments.Table, error) { return experiments.Fig13Prototype(prototype.DefaultParams()) }},
		{"fig14", func() ([]experiments.Table, error) { return experiments.Fig14CycleTime(), nil }},
		{"fig15", experiments.Fig15CostSweepK12},
		{"fig16", func() ([]experiments.Table, error) { return experiments.Fig16PathVsScale(nil) }},
		{"fig17", func() ([]experiments.Table, error) { return experiments.Fig17SpectralGap(analysisScale) }},
		{"fig19", func() ([]experiments.Table, error) { return experiments.Fig19ClosFailures(analysisScale, *trials) }},
		{"fig20", func() ([]experiments.Table, error) { return experiments.Fig20ExpanderFailures(analysisScale, *trials) }},
		{"table1", func() ([]experiments.Table, error) { return experiments.Table1RuleCounts(), nil }},
		{"table2", func() ([]experiments.Table, error) { return experiments.Table2Cost(), nil }},
		{"ablation", experiments.AblationVLB},
		{"guardband", func() ([]experiments.Table, error) { return experiments.GuardBandSweep(analysisScale) }},
	}

	failed := 0
	for _, j := range jobs {
		if !sel(j.name) {
			continue
		}
		fmt.Printf("=== %s\n", j.name)
		tables, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			failed++
			continue
		}
		if err := experiments.WriteAll(*out, tables); err != nil {
			fmt.Fprintf(os.Stderr, "%s: write: %v\n", j.name, err)
			failed++
			continue
		}
		for _, t := range tables {
			fmt.Printf("    wrote %s/%s.csv (%d rows)\n", *out, t.Name, len(t.Rows))
			if *doPlot {
				plotTable(t)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// plotTable renders CDF-shaped tables (series name, x, y columns) as ASCII
// charts. Other shapes are skipped.
func plotTable(t experiments.Table) {
	if len(t.Header) != 3 || len(t.Rows) == 0 {
		return
	}
	bySeries := map[string]*plot.Series{}
	var order []string
	logX := false
	for _, r := range t.Rows {
		x, errX := strconv.ParseFloat(r[1], 64)
		y, errY := strconv.ParseFloat(r[2], 64)
		if errX != nil || errY != nil {
			return // not numeric: nothing to draw
		}
		s := bySeries[r[0]]
		if s == nil {
			s = &plot.Series{Name: r[0]}
			bySeries[r[0]] = s
			order = append(order, r[0])
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
		if x > 100000 {
			logX = true
		}
	}
	series := make([]plot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, *bySeries[name])
	}
	fmt.Println(plot.Render(plot.Options{
		Title: t.Name, LogX: logX,
		XLabel: t.Header[1], YLabel: t.Header[2],
	}, series...))
}
