// Command opera-lint runs the repository's determinism and hot-path
// analyzers over Go packages — the mechanical form of the invariants the
// simulator's results stand on.
//
// Usage:
//
//	opera-lint [-list] [packages...]
//
// With no arguments it analyzes ./... . Patterns are resolved by the go
// command, so anything `go list` accepts works. Non-test Go files are
// analyzed; the exit status is 0 when clean, 1 when diagnostics were
// reported, 2 when loading or type-checking failed.
//
// The four analyzers (see each package's doc for the full rationale):
//
//	noclosuresched  closure-literal eventsim scheduling on the packet hot path
//	determrand      wall-clock reads and global-RNG draws in simulation code
//	maporder        order-sensitive range-over-map loops
//	injecterr       discarded errors that are silent no-ops (Inject/Recover,
//	                TryMerge, codec UnmarshalBinary)
//
// Findings are suppressed line-by-line with
// `//operalint:allow <check> -- reason`; see internal/lint/lintutil.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/opera-net/opera/internal/lint/analysis"
	"github.com/opera-net/opera/internal/lint/determrand"
	"github.com/opera-net/opera/internal/lint/injecterr"
	"github.com/opera-net/opera/internal/lint/loadpkg"
	"github.com/opera-net/opera/internal/lint/maporder"
	"github.com/opera-net/opera/internal/lint/noclosuresched"
)

var analyzers = []*analysis.Analyzer{
	noclosuresched.Analyzer,
	determrand.Analyzer,
	maporder.Analyzer,
	injecterr.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: opera-lint [-list] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the opera determinism/hot-path analyzers (default pattern ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns))
}

func run(patterns []string) int {
	pkgs, err := loadpkg.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opera-lint:", err)
		return 2
	}
	status := 0
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			fmt.Fprintf(os.Stderr, "opera-lint: %s: %v\n", pkg.ImportPath, pkg.Err)
			status = 2
			continue
		}
		if len(pkg.Files) == 0 {
			continue
		}
		type finding struct {
			d        analysis.Diagnostic
			analyzer string
		}
		var findings []finding
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{d, name})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "opera-lint: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				status = 2
			}
		}
		sort.SliceStable(findings, func(i, j int) bool {
			return findings[i].d.Pos < findings[j].d.Pos
		})
		for _, f := range findings {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(f.d.Pos), f.d.Message, f.analyzer)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
