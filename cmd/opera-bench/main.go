// Command opera-bench runs the engine/transport hot-path benchmark set
// and writes the results as machine-readable JSON (BENCH_engine.json by
// default). It exists so perf numbers travel with CI runs as artifacts
// instead of living in scrollback: the suite covers the port transmit
// pipeline (BenchmarkPortEnqueue), the scheduler core under its dense and
// sparse workloads for both pending-event stores
// (BenchmarkEngineSchedule/{dense,sparse}/{wheel,heap}), and the
// end-to-end Source-driven steady state (BenchmarkSourceSteadyState).
//
// The report also derives the dense wheel-vs-heap speedup — the number
// the timing-wheel default is justified by — so a regression shows up as
// a ratio, not two values someone has to divide.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// A run is one `go test -bench` invocation.
type run struct {
	pkg     string // package path relative to the module root
	pattern string
	time    string // -benchtime
}

var runs = []run{
	{pkg: "./internal/sim/", pattern: "^BenchmarkPortEnqueue", time: "1s"},
	{pkg: "./internal/eventsim/", pattern: "^BenchmarkEngineSchedule$", time: "1s"},
	{pkg: ".", pattern: "^BenchmarkSourceSteadyState$", time: "1x"},
}

// Result is one benchmark line, parsed.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom ReportMetric units (flows/op, sim-events/op, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
	// Derived ratios, keyed by name. dense_wheel_vs_heap_speedup is
	// heap ns/op divided by wheel ns/op on the dense workload: > 1 means
	// the wheel (the engine default) is winning.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// benchLine matches `BenchmarkFoo/sub-8   123  45.6 ns/op  0 B/op  ...`.
// The -N GOMAXPROCS suffix and every unit column are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(pkg string, out []byte, into *[]Result) {
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: pkg}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = v
			}
		}
		*into = append(*into, r)
	}
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output JSON path")
	benchtime := flag.String("benchtime", "", "override -benchtime for every run (e.g. 100ms for a smoke pass)")
	flag.Parse()

	rep := Report{Derived: make(map[string]float64)}
	for _, r := range runs {
		bt := r.time
		if *benchtime != "" {
			bt = *benchtime
		}
		cmd := exec.Command("go", "test", "-run", "NONE", "-bench", r.pattern, "-benchtime", bt, r.pkg)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		os.Stdout.Write(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opera-bench: %s: %v\n", r.pkg, err)
			os.Exit(1)
		}
		parse(r.pkg, raw, &rep.Benchmarks)
	}

	byName := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	if w, h := byName["BenchmarkEngineSchedule/dense/wheel"], byName["BenchmarkEngineSchedule/dense/heap"]; w.NsPerOp > 0 {
		rep.Derived["dense_wheel_vs_heap_speedup"] = h.NsPerOp / w.NsPerOp
	}
	if w, h := byName["BenchmarkEngineSchedule/sparse/wheel"], byName["BenchmarkEngineSchedule/sparse/heap"]; w.NsPerOp > 0 {
		rep.Derived["sparse_wheel_vs_heap_speedup"] = h.NsPerOp / w.NsPerOp
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "opera-bench: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "opera-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "opera-bench: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
