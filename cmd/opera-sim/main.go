// Command opera-sim runs a single packet-level simulation scenario and
// prints flow-completion statistics — a workbench for exploring the
// architectures interactively.
//
// Examples:
//
//	opera-sim -network opera -workload datamining -load 0.25 -duration 20ms
//	opera-sim -network foldedclos -workload shuffle -flowbytes 100000
//	opera-sim -network rotornet -workload websearch -load 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

func main() {
	network := flag.String("network", "opera", "opera | expander | foldedclos | rotornet | rotornet-hybrid")
	wl := flag.String("workload", "datamining", "datamining | websearch | hadoop | shuffle | permutation | hotrack")
	load := flag.Float64("load", 0.10, "offered load fraction (Poisson workloads)")
	duration := flag.Duration("duration", 20*time.Millisecond, "arrival window (virtual time)")
	racks := flag.Int("racks", 16, "racks (Opera/RotorNet/expander)")
	hostsPerRack := flag.Int("hosts-per-rack", 4, "hosts per rack")
	uplinks := flag.Int("uplinks", 4, "uplinks per ToR")
	closK := flag.Int("clos-k", 8, "folded-Clos radix")
	closF := flag.Int("clos-f", 3, "folded-Clos oversubscription")
	flowBytes := flag.Int64("flowbytes", 100_000, "flow size for shuffle/permutation/hotrack")
	maxFlow := flag.Int64("maxflow", 50_000_000, "cap on sampled flow sizes (0 = none)")
	seed := flag.Int64("seed", 1, "random seed")
	drain := flag.Int("drain", 50, "drain deadline as a multiple of -duration")
	flag.Parse()

	var kind opera.Kind
	switch *network {
	case "opera":
		kind = opera.KindOpera
	case "expander":
		kind = opera.KindExpander
	case "foldedclos":
		kind = opera.KindFoldedClos
	case "rotornet":
		kind = opera.KindRotorNet
	case "rotornet-hybrid":
		kind = opera.KindRotorNetHybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *network)
		os.Exit(2)
	}

	cl, err := opera.NewCluster(opera.ClusterConfig{
		Kind:         kind,
		Racks:        *racks,
		HostsPerRack: *hostsPerRack,
		Uplinks:      *uplinks,
		ClosK:        *closK,
		ClosF:        *closF,
		// §5.6's throughput patterns are bulk workloads: application-tag
		// them so Opera serves them on direct circuits regardless of size.
		AppTaggedBulk: *wl == "shuffle" || *wl == "hotrack" || *wl == "permutation",
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dur := eventsim.Time(duration.Nanoseconds())
	var flows []workload.FlowSpec
	switch *wl {
	case "datamining", "websearch", "hadoop":
		var dist *workload.FlowSizeDist
		switch *wl {
		case "datamining":
			dist = workload.Datamining()
		case "websearch":
			dist = workload.Websearch()
		default:
			dist = workload.Hadoop()
		}
		flows = workload.Poisson(workload.PoissonConfig{
			NumHosts:     cl.NumHosts(),
			HostsPerRack: cl.HostsPerRack(),
			Load:         *load,
			LinkRateGbps: 10,
			Duration:     dur,
			Dist:         dist,
			Seed:         *seed,
		})
		if *maxFlow > 0 {
			for i := range flows {
				if flows[i].Bytes > *maxFlow {
					flows[i].Bytes = *maxFlow
				}
			}
		}
	case "shuffle":
		flows = workload.Shuffle(cl.NumHosts(), *flowBytes, 0, *seed)
	case "permutation":
		flows = workload.Permutation(cl.NumHosts(), cl.HostsPerRack(), *flowBytes, *seed)
	case "hotrack":
		flows = workload.HotRack(cl.HostsPerRack(), *flowBytes)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	cl.AddFlows(flows)
	start := time.Now()
	completed := cl.RunUntilDone(dur * eventsim.Time(*drain))
	wall := time.Since(start)

	m := cl.Metrics()
	done, total := m.DoneCount()
	fmt.Printf("network=%s workload=%s flows=%d completed=%d (%.1f%%) wall=%v\n",
		kind, *wl, total, done, 100*float64(done)/float64(max(total, 1)), wall.Round(time.Millisecond))
	if !completed {
		fmt.Printf("  (did not finish before drain deadline)\n")
	}
	for _, class := range []sim.Class{sim.ClassLowLatency, sim.ClassBulk} {
		class := class
		s := m.FCTSample(func(f *sim.Flow) bool { return f.Class == class && f.Done })
		if s.N() == 0 {
			continue
		}
		fmt.Printf("  %-7s n=%-6d fct p50=%.1fµs p99=%.1fµs max=%.1fµs tax=%.1f%%\n",
			class, s.N(), s.Median(), s.P99(), s.Max(), 100*m.BandwidthTax(class))
	}
	fmt.Printf("  delivered=%.1f MB aggregate-tax=%.1f%% bulk-NACKs=%d sim-events=%d\n",
		m.DeliveredBytes.Total()/1e6, 100*m.AggregateTax(), cl.BulkNACKCount(), cl.Engine().Steps())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
