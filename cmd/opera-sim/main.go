// Command opera-sim runs a single packet-level simulation scenario and
// prints flow-completion statistics — a workbench for exploring the
// architectures interactively. Open-loop workloads stream lazily through
// the Source API, so long windows and high loads never materialize a
// flow list.
//
// Examples:
//
//	opera-sim -network opera -workload datamining -load 0.25 -duration 20ms
//	opera-sim -network foldedclos -workload shuffle -flowbytes 100000
//	opera-sim -network rotornet -workload websearch -load 0.05
//	opera-sim -network opera -workload mix -load 0.2 -arrivals 5000
//	opera-sim -network opera -trace flows.txt
//	opera-sim -network opera -workload shuffle -tag shuffle \
//	    -fail-at 500us:link:3:2,2ms:recover-link:3:2
//	opera-sim -network opera -workload datamining -duration 10s \
//	    -retention sketch
//
// The last form runs flat-memory: completed flows feed streaming
// quantile sketches (±1% pinned error, see -sketch-alpha) instead of
// being retained, so arbitrarily long windows hold only active flows.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/obs"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
	"github.com/opera-net/opera/scenario"
)

// parseFaultSchedule turns "-fail-at 500us:link:3:2,2ms:switch:1" into
// scenario Events: each comma-separated entry is TIME:ACTION with ACTION
// one of link:R:S, tor:R, switch:S, recover-link:R:S, recover-tor:R,
// recover-switch:S, random-links:FRAC, the gray failures lossy:R:S:RATE,
// degraded:R:S:FRAC and flap:R:S:UP:DOWN (durations like 200us), or the
// tier-addressed forms tier-link:T:S:P, recover-tier-link:T:S:P,
// tier-switch:T:S and recover-tier-switch:T:S for multi-tier fabrics
// (folded Clos: tier 1 = ToR uplinks, 2 = agg uplinks/switches,
// 3 = core switches).
func parseFaultSchedule(s string) ([]scenario.Event, error) {
	if s == "" {
		return nil, nil
	}
	var out []scenario.Event
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault %q: want TIME:ACTION[:ARGS]", item)
		}
		d, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("fault %q: %v", item, err)
		}
		args := parts[2:]
		argInt := func(i int) (int, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("fault %q: action %s wants more arguments", item, parts[1])
			}
			return strconv.Atoi(args[i])
		}
		two := func(mk func(a, b int) scenario.Action) (scenario.Action, error) {
			a, err := argInt(0)
			if err != nil {
				return scenario.Action{}, err
			}
			b, err := argInt(1)
			if err != nil {
				return scenario.Action{}, err
			}
			return mk(a, b), nil
		}
		one := func(mk func(a int) scenario.Action) (scenario.Action, error) {
			a, err := argInt(0)
			if err != nil {
				return scenario.Action{}, err
			}
			return mk(a), nil
		}
		argFloat := func(i int) (float64, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("fault %q: action %s wants more arguments", item, parts[1])
			}
			return strconv.ParseFloat(args[i], 64)
		}
		argDur := func(i int) (eventsim.Time, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("fault %q: action %s wants more arguments", item, parts[1])
			}
			dd, err := time.ParseDuration(args[i])
			if err != nil {
				return 0, fmt.Errorf("fault %q: %v", item, err)
			}
			return eventsim.Time(dd.Nanoseconds()), nil
		}
		// twoFloat parses R:S:X actions (lossy, degraded).
		twoFloat := func(mk func(a, b int, x float64) scenario.Action) (scenario.Action, error) {
			a, err := argInt(0)
			if err != nil {
				return scenario.Action{}, err
			}
			b, err := argInt(1)
			if err != nil {
				return scenario.Action{}, err
			}
			x, err := argFloat(2)
			if err != nil {
				return scenario.Action{}, err
			}
			return mk(a, b, x), nil
		}
		var act scenario.Action
		switch parts[1] {
		case "link":
			act, err = two(scenario.FailLink)
		case "tor":
			act, err = one(scenario.FailToR)
		case "switch":
			act, err = one(scenario.FailSwitch)
		case "recover-link":
			act, err = two(scenario.RecoverLink)
		case "recover-tor":
			act, err = one(scenario.RecoverToR)
		case "recover-switch":
			act, err = one(scenario.RecoverSwitch)
		case "lossy":
			act, err = twoFloat(scenario.LossyLink)
		case "degraded":
			act, err = twoFloat(scenario.DegradedLink)
		case "flap":
			var r, sw int
			var up, down eventsim.Time
			if r, err = argInt(0); err == nil {
				if sw, err = argInt(1); err == nil {
					if up, err = argDur(2); err == nil {
						if down, err = argDur(3); err == nil {
							act = scenario.FlappingLink(r, sw, up, down)
						}
					}
				}
			}
		case "tier-link":
			var tier, sw, port int
			if tier, err = argInt(0); err == nil {
				if sw, err = argInt(1); err == nil {
					if port, err = argInt(2); err == nil {
						act = scenario.Inject(
							sim.LinkTarget(sim.LinkID{Tier: tier, Switch: sw, Port: port}),
							sim.DownFault())
					}
				}
			}
		case "recover-tier-link":
			var tier, sw, port int
			if tier, err = argInt(0); err == nil {
				if sw, err = argInt(1); err == nil {
					if port, err = argInt(2); err == nil {
						act = scenario.Recover(
							sim.LinkTarget(sim.LinkID{Tier: tier, Switch: sw, Port: port}))
					}
				}
			}
		case "tier-switch":
			act, err = two(scenario.FailTierSwitch)
		case "recover-tier-switch":
			act, err = two(scenario.RecoverTierSwitch)
		case "random-links":
			if len(args) < 1 {
				return nil, fmt.Errorf("fault %q: random-links wants a fraction", item)
			}
			frac, ferr := strconv.ParseFloat(args[0], 64)
			if ferr != nil {
				return nil, fmt.Errorf("fault %q: %v", item, ferr)
			}
			act = scenario.FailRandomLinks(frac)
		default:
			return nil, fmt.Errorf("fault %q: unknown action %q", item, parts[1])
		}
		if err != nil {
			return nil, err
		}
		out = append(out, scenario.At(eventsim.Time(d.Nanoseconds()), act))
	}
	return out, nil
}

func main() {
	network := flag.String("network", "opera", "opera | expander | foldedclos | rotornet | rotornet-hybrid")
	wl := flag.String("workload", "datamining", "datamining | websearch | hadoop | mix | incast | shuffle | permutation | hotrack")
	load := flag.Float64("load", 0.10, "offered load fraction (Poisson workloads)")
	arrivals := flag.Int("arrivals", 0, "cap on open-loop flow arrivals (0 = window-bound only)")
	tracePath := flag.String("trace", "", "replay a flow trace file (arrival_ns src dst bytes [tag] [bulk] per line); overrides -workload")
	duration := flag.Duration("duration", 20*time.Millisecond, "arrival window (virtual time)")
	racks := flag.Int("racks", 16, "racks (Opera/RotorNet/expander)")
	hostsPerRack := flag.Int("hosts-per-rack", 4, "hosts per rack")
	uplinks := flag.Int("uplinks", 4, "uplinks per ToR")
	closK := flag.Int("clos-k", 8, "folded-Clos radix")
	closF := flag.Int("clos-f", 3, "folded-Clos oversubscription")
	flowBytes := flag.Int64("flowbytes", 100_000, "flow size for shuffle/permutation/hotrack")
	maxFlow := flag.Int64("maxflow", 50_000_000, "cap on sampled flow sizes (0 = none)")
	seed := flag.Int64("seed", 1, "random seed")
	drain := flag.Int("drain", 50, "drain deadline as a multiple of -duration")
	failAt := flag.String("fail-at", "", "comma-separated fault schedule, each TIME:ACTION "+
		"(link:R:S | tor:R | switch:S | recover-link:R:S | recover-tor:R | recover-switch:S | random-links:FRAC | "+
		"lossy:R:S:RATE | degraded:R:S:FRAC | flap:R:S:UP:DOWN | "+
		"tier-link:T:S:P | recover-tier-link:T:S:P | tier-switch:T:S | recover-tier-switch:T:S), "+
		"e.g. \"500us:link:3:2,1ms:lossy:4:0:0.01,2ms:recover-link:3:2\"")
	tagName := flag.String("tag", "", "tag generated flows; per-tag stats are reported")
	retention := flag.String("retention", "all",
		"metrics retention: all (exact, retains every flow) | sketch (streaming quantile sketches, flat memory for unbounded runs)")
	sketchAlpha := flag.Float64("sketch-alpha", 0.01, "relative-error bound for -retention sketch")
	statusAddr := flag.String("status", "", "serve live status on this address (e.g. :8080; empty = off): "+
		"/status JSON, /status/stream SSE, /debug/vars, /debug/pprof")
	statusEvery := flag.Duration("status-every", time.Millisecond, "snapshot sampling period in virtual time (with -status)")
	statusLinger := flag.Duration("status-linger", 0, "keep serving -status this long (wall time) after the run finishes; SIGINT/SIGTERM ends the linger early")
	flag.Parse()

	events, err := parseFaultSchedule(*failAt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kind, err := opera.ParseKind(*network)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	dur := eventsim.Time(duration.Nanoseconds())
	var gen scenario.Source
	var replay *workload.ReplaySource
	var replayRangeErr error
	switch {
	case *tracePath != "":
		rs, closer, err := workload.ReplayFile(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer closer.Close()
		replay = rs
		// The parser can't know the cluster size; bound-check against the
		// built cluster so a stray host index is a diagnostic, not a panic.
		gen = func(env scenario.Env) workload.Source {
			return workload.SourceFunc(func() (workload.FlowSpec, bool) {
				spec, ok := rs.Next()
				if ok && (spec.Src >= env.NumHosts || spec.Dst >= env.NumHosts) {
					replayRangeErr = fmt.Errorf("trace flow %d->%d outside cluster with %d hosts", spec.Src, spec.Dst, env.NumHosts)
					return workload.FlowSpec{}, false
				}
				return spec, ok
			})
		}
		*wl = "trace:" + *tracePath
	case *wl == "datamining":
		gen = scenario.Poisson(workload.Datamining(), *load, dur, *maxFlow)
	case *wl == "websearch":
		gen = scenario.Poisson(workload.Websearch(), *load, dur, *maxFlow)
	case *wl == "hadoop":
		gen = scenario.Poisson(workload.Hadoop(), *load, dur, *maxFlow)
	case *wl == "mix":
		// The §5.2 blend: latency-sensitive websearch over a bulk-tagged
		// datamining component, one open-loop arrival process.
		gen = func(env scenario.Env) workload.Source {
			return workload.Mix(workload.PoissonConfig{
				NumHosts:     env.NumHosts,
				HostsPerRack: env.HostsPerRack,
				Load:         *load,
				LinkRateGbps: env.LinkRateGbps,
				Duration:     dur,
				Seed:         env.Seed,
			},
				workload.MixComponent{Dist: workload.Websearch(), Weight: 0.5, Tag: "websearch", MaxFlowBytes: *maxFlow},
				workload.MixComponent{Dist: workload.Datamining(), Weight: 0.5, Tag: "datamining", Bulk: true, MaxFlowBytes: *maxFlow},
			)
		}
	case *wl == "incast":
		gen = scenario.Incast(8, *flowBytes, dur/10, 10)
	case *wl == "shuffle":
		gen = scenario.Adapt(scenario.Shuffle(*flowBytes, 0))
	case *wl == "permutation":
		gen = scenario.Adapt(func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
			return workload.Permutation(numHosts, hostsPerRack, *flowBytes, seed)
		})
	case *wl == "hotrack":
		gen = scenario.Adapt(func(numHosts, hostsPerRack int, seed int64) []workload.FlowSpec {
			return workload.HotRack(hostsPerRack, *flowBytes)
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if *arrivals > 0 {
		gen = scenario.Take(gen, *arrivals)
	}
	if *tagName != "" {
		gen = scenario.TagSource(*tagName, gen)
	}

	opts := []opera.Option{
		opera.WithRacks(*racks),
		opera.WithHostsPerRack(*hostsPerRack),
		opera.WithUplinks(*uplinks),
		opera.WithClos(*closK, *closF),
		// §5.6's throughput patterns are bulk workloads: application-tag
		// them so Opera serves them on direct circuits regardless of size.
		opera.WithAppTaggedBulk(*wl == "shuffle" || *wl == "hotrack" || *wl == "permutation"),
	}
	switch *retention {
	case "all":
	case "sketch":
		opts = append(opts,
			opera.WithRetention(opera.RetainSketch(opera.SketchOptions{Alpha: *sketchAlpha})))
	default:
		fmt.Fprintf(os.Stderr, "unknown -retention %q (want all or sketch)\n", *retention)
		os.Exit(2)
	}

	sc := scenario.Scenario{
		Name:     *network,
		Kind:     kind,
		Seed:     *seed,
		Options:  opts,
		Sources:  []scenario.Source{gen},
		Events:   events,
		Duration: dur * eventsim.Time(*drain),
	}

	// Live observability: a Publisher samples the run into a lock-free
	// mailbox on the engine's meta-event surface (results stay
	// byte-identical), and an HTTP server exposes the mailbox.
	var pub *obs.Publisher
	var statusSrv *http.Server
	if *statusAddr != "" {
		box := &obs.Mailbox{}
		pub = obs.NewPublisher(box, eventsim.Time(statusEvery.Nanoseconds()))
		sc.Observer = pub
		srv, bound, err := obs.Serve(*statusAddr, box)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		statusSrv = srv
		fmt.Fprintf(os.Stderr, "status: serving http://%s/status\n", bound)
	}

	start := time.Now()
	_, res := scenario.Collect(sc)
	wall := time.Since(start)
	if res.Err != "" {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(1)
	}
	if replay != nil && replay.Err() != nil {
		fmt.Fprintln(os.Stderr, replay.Err())
		os.Exit(1)
	}
	if replayRangeErr != nil {
		fmt.Fprintln(os.Stderr, replayRangeErr)
		os.Exit(1)
	}

	fmt.Printf("network=%s workload=%s flows=%d completed=%d (%.1f%%) wall=%v\n",
		kind, *wl, res.FlowsTotal, res.FlowsDone,
		100*float64(res.FlowsDone)/float64(max(res.FlowsTotal, 1)), wall.Round(time.Millisecond))
	if !res.Completed {
		fmt.Printf("  (did not finish before drain deadline)\n")
	}
	for _, cs := range []struct {
		label string
		s     scenario.FCTStats
	}{{"lowlat", res.LowLat}, {"bulk", res.Bulk}} {
		if cs.s.N == 0 {
			continue
		}
		fmt.Printf("  %-7s n=%-6d fct p50=%.1fµs p99=%.1fµs max=%.1fµs\n",
			cs.label, cs.s.N, cs.s.P50Us, cs.s.P99Us, cs.s.MaxUs)
	}
	fmt.Printf("  throughput=%.2f Gb/s aggregate-tax=%.1f%% bulk-NACKs=%d sim-events=%d\n",
		res.ThroughputGbps, 100*res.AggregateTax, res.BulkNACKs, res.SimEvents)
	if tel := res.Telemetry; tel != nil {
		fmt.Printf("  telemetry (sketch, ±%.2g%%): p90=%.1fµs p99=%.1fµs p99.9=%.1fµs\n",
			100*tel.ErrorBound, tel.All.P90Us, tel.All.P99Us, tel.All.P999Us)
		if n := len(tel.WindowGbps); n > 0 {
			fmt.Printf("  trailing window: %d×%.1fms bins from t=%.1fms, last-bin throughput=%.2f Gb/s window-tax=%.1f%%\n",
				n, tel.WindowBinMs, tel.WindowStartMs, tel.WindowGbps[n-1], 100*tel.WindowTax)
		}
	}
	if len(res.ByTag) > 0 {
		tags := make([]string, 0, len(res.ByTag))
		for t := range res.ByTag {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		for _, t := range tags {
			ts := res.ByTag[t]
			fmt.Printf("  tag %-8s n=%d/%d p50=%.1fµs p99=%.1fµs throughput=%.2f Gb/s\n",
				t, ts.FlowsDone, ts.FlowsTotal, ts.FCT.P50Us, ts.FCT.P99Us, ts.ThroughputGbps)
		}
	}

	if statusSrv != nil {
		// Publish the final state (the run can end between sampling ticks),
		// then keep the endpoint up through the linger so dashboards and
		// smoke tests can read the completed run. A signal ends it early.
		pub.Finalize()
		if *statusLinger > 0 {
			fmt.Fprintf(os.Stderr, "status: lingering %v (SIGINT/SIGTERM to stop)\n", *statusLinger)
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			select {
			case <-time.After(*statusLinger):
			case <-sig:
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		statusSrv.Shutdown(ctx)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
