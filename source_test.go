package opera_test

import (
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/workload"
)

// lazyProbe wraps a Source and asserts the cluster pulls it lazily: after
// the initial lookahead pull, Next may only be called once virtual time
// has reached the previously yielded arrival — i.e. the pump holds at
// most one spec of lookahead and never materializes the stream.
type lazyProbe struct {
	t     *testing.T
	cl    *opera.Cluster
	inner workload.Source

	pulls    int
	lastSpec workload.FlowSpec
	have     bool
}

func (lp *lazyProbe) Next() (workload.FlowSpec, bool) {
	lp.pulls++
	if lp.have && lp.pulls > 2 {
		if now := lp.cl.Engine().Now(); now < lp.lastSpec.Arrival {
			lp.t.Fatalf("pull %d at t=%v, before previous arrival %v: source drained eagerly",
				lp.pulls, now, lp.lastSpec.Arrival)
		}
	}
	spec, ok := lp.inner.Next()
	lp.lastSpec, lp.have = spec, ok
	return spec, ok
}

func steadySource(numHosts int, load float64, window eventsim.Time, seed int64) workload.Source {
	return workload.PoissonSource(workload.PoissonConfig{
		NumHosts:     numHosts,
		HostsPerRack: 4,
		Load:         load,
		LinkRateGbps: 10,
		Duration:     window,
		Dist:         workload.Fixed(1500),
		Seed:         seed,
	})
}

// A Source-driven run admits flows lazily — one pending arrival at a time
// — and leaves no pending source behind.
func TestAddSourceIsLazy(t *testing.T) {
	cl, err := opera.New(opera.KindOpera)
	if err != nil {
		t.Fatal(err)
	}
	probe := &lazyProbe{t: t, cl: cl, inner: steadySource(cl.NumHosts(), 0.01, 5*eventsim.Millisecond, 1)}
	cl.AddSource(probe)
	if cl.PendingSources() != 1 {
		t.Fatalf("PendingSources = %d, want 1", cl.PendingSources())
	}
	if !cl.RunUntilDone(200 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows done", done, total)
	}
	if cl.PendingSources() != 0 {
		t.Fatalf("PendingSources = %d after drain, want 0", cl.PendingSources())
	}
	_, total := cl.Metrics().DoneCount()
	if total == 0 {
		t.Fatal("source admitted no flows")
	}
	// pulls = flows + the final exhausted pull.
	if probe.pulls != total+1 {
		t.Fatalf("pulls = %d for %d flows; pump should hold one spec of lookahead", probe.pulls, total)
	}
}

// RunUntilDone must not declare completion during a lull: here the first
// flow finishes long before the second arrives.
func TestRunUntilDoneWaitsOutSourceLulls(t *testing.T) {
	cl, err := opera.New(opera.KindOpera)
	if err != nil {
		t.Fatal(err)
	}
	flows := []workload.FlowSpec{
		{Src: 0, Dst: 9, Bytes: 10_000, Arrival: 0},
		{Src: 3, Dst: 17, Bytes: 10_000, Arrival: 50 * eventsim.Millisecond},
	}
	i := 0
	cl.AddSource(workload.SourceFunc(func() (workload.FlowSpec, bool) {
		if i >= len(flows) {
			return workload.FlowSpec{}, false
		}
		s := flows[i]
		i++
		return s, true
	}))
	if !cl.RunUntilDone(200 * eventsim.Millisecond) {
		t.Fatal("run incomplete")
	}
	done, total := cl.Metrics().DoneCount()
	if done != 2 || total != 2 {
		t.Fatalf("done/total = %d/%d, want 2/2: the run ended during the arrival lull", done, total)
	}
}

// The acceptance soak: a steady-state Source run sustains at least 10×
// the flow count of the largest materialized workload (the 64-host full
// shuffle, 4032 flows) without ever materializing a flow list — verified
// by the lazy-pull invariant riding along.
func TestSourceSteadyStateSustains10x(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: ~45k flows of packet-level simulation")
	}
	const floor = 10 * 4032
	cl, err := opera.New(opera.KindOpera)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed 1500 B flows at 4% load over 20 ms ≈ 42.7k arrivals.
	probe := &lazyProbe{t: t, cl: cl, inner: steadySource(cl.NumHosts(), 0.04, 20*eventsim.Millisecond, 1)}
	cl.AddSource(probe)
	if !cl.RunUntilDone(400 * eventsim.Millisecond) {
		done, total := cl.Metrics().DoneCount()
		t.Fatalf("only %d/%d flows done", done, total)
	}
	done, total := cl.Metrics().DoneCount()
	if total < floor {
		t.Fatalf("sustained %d flows, want >= %d (10x the 64-host shuffle)", total, floor)
	}
	if done != total {
		t.Fatalf("done %d != total %d", done, total)
	}
	if probe.pulls != total+1 {
		t.Fatalf("pulls = %d for %d flows: flow list was materialized somewhere", probe.pulls, total)
	}
}
