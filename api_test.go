package opera_test

import (
	"testing"

	opera "github.com/opera-net/opera"
	"github.com/opera-net/opera/internal/eventsim"
	"github.com/opera-net/opera/internal/sim"
	"github.com/opera-net/opera/internal/workload"
)

// runShuffle drives a small shuffle (16 participants, arrivals staggered
// over 1 ms to keep NDP incast mild) to completion and summarizes it.
func runShuffle(t *testing.T, cl *opera.Cluster) (done, total int, meanUs, p99Us float64) {
	t.Helper()
	cl.AddFlows(workload.Shuffle(16, 30_000, eventsim.Millisecond, 7))
	if !cl.RunUntilDone(4000 * eventsim.Millisecond) {
		d, n := cl.Metrics().DoneCount()
		t.Fatalf("%v: only %d/%d flows completed", cl.Kind(), d, n)
	}
	cl.Stop()
	s := cl.Metrics().FCTSample(func(f *sim.Flow) bool { return f.Done })
	done, total = cl.Metrics().DoneCount()
	return done, total, s.Mean(), s.P99()
}

// Every registered Kind must build through both construction paths — the
// functional-options New and the legacy NewCluster shim — and produce
// identical FCT metrics for an identical workload, since both feed the
// same registry builder.
func TestOptionsMatchLegacyConfig(t *testing.T) {
	kinds := []opera.Kind{
		opera.KindOpera, opera.KindExpander, opera.KindFoldedClos,
		opera.KindRotorNet, opera.KindRotorNetHybrid,
	}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			legacy, err := opera.NewCluster(opera.ClusterConfig{
				Kind:  k,
				Racks: 16, HostsPerRack: 4, Uplinks: 4,
				ClosK: 8, ClosF: 3,
				BulkThreshold: 200_000,
				Seed:          3,
			})
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			modern, err := opera.New(k,
				opera.WithRacks(16),
				opera.WithHostsPerRack(4),
				opera.WithUplinks(4),
				opera.WithClos(8, 3),
				opera.WithBulkThreshold(200_000),
				opera.WithSeed(3),
			)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if legacy.NumHosts() != modern.NumHosts() || legacy.HostsPerRack() != modern.HostsPerRack() {
				t.Fatalf("shape mismatch: legacy %d×%d, modern %d×%d",
					legacy.NumHosts(), legacy.HostsPerRack(), modern.NumHosts(), modern.HostsPerRack())
			}
			ld, lt, lMean, lP99 := runShuffle(t, legacy)
			md, mt, mMean, mP99 := runShuffle(t, modern)
			if ld != md || lt != mt || lMean != mMean || lP99 != mP99 {
				t.Fatalf("metrics diverge: legacy done=%d/%d mean=%v p99=%v, modern done=%d/%d mean=%v p99=%v",
					ld, lt, lMean, lP99, md, mt, mMean, mP99)
			}
		})
	}
}

// The dispatch table must route classes to the transports the paper gives
// each architecture.
func TestTransportDispatch(t *testing.T) {
	cases := []struct {
		kind opera.Kind
		// sameTransport reports whether both classes share one transport.
		sameTransport bool
	}{
		{opera.KindOpera, false},
		{opera.KindExpander, true},
		{opera.KindFoldedClos, true},
		{opera.KindRotorNetHybrid, false},
	}
	for _, tc := range cases {
		cl, err := opera.New(tc.kind)
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		ll := cl.Transport(sim.ClassLowLatency)
		bulk := cl.Transport(sim.ClassBulk)
		if ll == nil || bulk == nil {
			t.Fatalf("%v: missing transport (lowlat=%v bulk=%v)", tc.kind, ll, bulk)
		}
		if (ll == bulk) != tc.sameTransport {
			t.Fatalf("%v: sameTransport=%v, want %v", tc.kind, ll == bulk, tc.sameTransport)
		}
	}
}

// The underlying fabric is reachable through the Network interface, and
// circuit fabrics upgrade to CircuitNetwork.
func TestNetworkInterface(t *testing.T) {
	for _, k := range []opera.Kind{opera.KindOpera, opera.KindExpander, opera.KindRotorNet} {
		cl, err := opera.New(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		n := cl.Network()
		if n.Kind() != k.String() {
			t.Fatalf("network kind %q, want %q", n.Kind(), k.String())
		}
		if n.NumRacks() != 16 || n.HostsPerRack() != 4 {
			t.Fatalf("%v: shape %d×%d", k, n.NumRacks(), n.HostsPerRack())
		}
		_, circuits := n.(sim.CircuitNetwork)
		wantCircuits := k == opera.KindOpera || k == opera.KindRotorNet
		if circuits != wantCircuits {
			t.Fatalf("%v: CircuitNetwork=%v, want %v", k, circuits, wantCircuits)
		}
	}
}

// RunUntilDone must stop polling its 100 µs grid once the event queue
// drains: with the circuit clock stopped, a stranded bulk flow can never
// finish, and the call must give up as soon as in-flight events die out
// instead of spinning to the deadline.
func TestRunUntilDoneEarlyExit(t *testing.T) {
	cl, err := opera.New(opera.KindRotorNet)
	if err != nil {
		t.Fatal(err)
	}
	f := cl.AddFlow(workload.FlowSpec{Src: 0, Dst: cl.NumHosts() - 1, Bytes: 50_000_000})
	cl.Stop() // halt the slot clock: the bulk queue can never drain
	deadline := 1_000_000 * eventsim.Millisecond
	if cl.RunUntilDone(deadline) {
		t.Fatal("stranded flow reported complete")
	}
	if f.Done {
		t.Fatal("flow done with no circuits")
	}
	// The queue drained within a few slots; the engine must have stopped
	// far short of the deadline rather than polling to it.
	if now := cl.Engine().Now(); now > deadline/100 {
		t.Fatalf("engine polled to %v of %v; early exit failed", now, deadline)
	}
}
